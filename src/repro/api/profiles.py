"""Estimator weight profiles as registrable components.

The moving-average estimator (equation (2) of the paper) is parameterised
by its weight vector ``(w_1, ..., w_L)``.  Three profiles cover the
paper's experiments and the obvious ablations:

* :class:`TfrcWeightProfile` -- the RFC 3448 profile (constant over the
  recent half of the window, linear decay over the older half), the
  default everywhere;
* :class:`UniformWeightProfile` -- the plain moving average ``w_l = 1/L``;
* :class:`CustomWeightProfile` -- explicit weights, for arbitrary
  ablations expressed purely as config data.

All profiles are frozen dataclasses whose ``weights()`` method returns
the normalised numpy vector consumed by the controls, and all of them
round-trip exactly through :data:`repro.api.WEIGHT_PROFILES`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..core.estimator import tfrc_weights, uniform_weights

__all__ = [
    "WeightProfile",
    "TfrcWeightProfile",
    "UniformWeightProfile",
    "CustomWeightProfile",
]


class WeightProfile(abc.ABC):
    """A declarative description of an estimator weight vector."""

    @abc.abstractmethod
    def weights(self) -> np.ndarray:
        """Return the normalised weights ``(w_1, ..., w_L)``."""

    @property
    def history_length(self) -> int:
        """The window length ``L``."""
        return int(self.weights().size)


@dataclass(frozen=True)
class TfrcWeightProfile(WeightProfile):
    """The TFRC (RFC 3448) weight profile for a window of ``L`` intervals."""

    history_length: int = 8

    def __post_init__(self) -> None:
        if self.history_length < 1:
            raise ValueError(
                f"history_length must be >= 1, got {self.history_length}"
            )

    def weights(self) -> np.ndarray:
        return tfrc_weights(self.history_length)


@dataclass(frozen=True)
class UniformWeightProfile(WeightProfile):
    """Equal weights ``w_l = 1/L`` (the plain moving average)."""

    history_length: int = 8

    def __post_init__(self) -> None:
        if self.history_length < 1:
            raise ValueError(
                f"history_length must be >= 1, got {self.history_length}"
            )

    def weights(self) -> np.ndarray:
        return uniform_weights(self.history_length)


@dataclass(frozen=True)
class CustomWeightProfile(WeightProfile):
    """Explicit estimator weights, normalised to sum to one."""

    raw_weights: Tuple[float, ...]

    def __init__(self, raw_weights: Sequence[float]) -> None:
        values = tuple(float(value) for value in raw_weights)
        if not values:
            raise ValueError("raw_weights must be non-empty")
        if any(value <= 0.0 for value in values):
            raise ValueError("all weights must be strictly positive")
        object.__setattr__(self, "raw_weights", values)

    def weights(self) -> np.ndarray:
        array = np.asarray(self.raw_weights, dtype=float)
        return array / array.sum()
