"""Dumbbell scenario families as registrable components.

The paper's packet-level experiments all share one topology -- TFRC, TCP
and probe flows over a single bottleneck -- and differ only in the
parameters of the queue, capacity, delays and flow counts.  This module
gives each family a small frozen dataclass that is pure data (exact JSON
round-trip through :data:`repro.api.SCENARIOS`) and knows how to
``build()`` the concrete :class:`~repro.simulator.scenarios.DumbbellConfig`
the simulator consumes:

* :class:`Ns2Scenario` -- the ns-2 analogue (Section V-A.2, RED);
* :class:`LabScenario` -- the lab analogue (Section V-A.3, DropTail/RED);
* :class:`InternetScenario` -- one of the Table I Internet paths;
* :class:`CustomDumbbellScenario` -- a fully explicit dumbbell for
  scenarios outside the paper's three families.

Splitting "family description" (this module) from "simulator input"
(:class:`DumbbellConfig`) is what keeps the experiment layer declarative:
a campaign grid can sweep scenario configs without importing the
simulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..simulator.scenarios import (
    DumbbellConfig,
    internet_config,
    lab_config,
    ns2_config,
)

__all__ = [
    "ScenarioFamily",
    "Ns2Scenario",
    "LabScenario",
    "InternetScenario",
    "CustomDumbbellScenario",
]


class ScenarioFamily(abc.ABC):
    """A declarative description of one dumbbell experiment scenario."""

    @abc.abstractmethod
    def build(self, seed: Optional[int] = None) -> DumbbellConfig:
        """Materialise the simulator configuration for this scenario."""


@dataclass(frozen=True)
class Ns2Scenario(ScenarioFamily):
    """The ns-2-analogue family: RED bottleneck, RTT about 50 ms."""

    num_connections: int = 1
    history_length: int = 8
    duration: float = 200.0
    capacity_mbps: float = 1.5

    def build(self, seed: Optional[int] = None) -> DumbbellConfig:
        return ns2_config(
            num_connections=self.num_connections,
            history_length=self.history_length,
            duration=self.duration,
            capacity_mbps=self.capacity_mbps,
            seed=seed,
        )


@dataclass(frozen=True)
class LabScenario(ScenarioFamily):
    """The lab-analogue family: DropTail or RED, comprehensive disabled.

    ``buffer_packets`` may be None with ``queue_type="red"`` to derive the
    buffer from the bandwidth-delay product, as in the paper's RED setup.
    """

    num_connections: int = 1
    queue_type: str = "droptail"
    buffer_packets: Optional[int] = 100
    history_length: int = 8
    duration: float = 200.0
    capacity_mbps: float = 1.0

    def build(self, seed: Optional[int] = None) -> DumbbellConfig:
        config = lab_config(
            self.num_connections,
            queue_type=self.queue_type,
            buffer_packets=(
                int(self.buffer_packets) if self.buffer_packets else 100
            ),
            history_length=self.history_length,
            duration=self.duration,
            capacity_mbps=self.capacity_mbps,
            seed=seed,
        )
        if self.queue_type == "red" and self.buffer_packets is None:
            config.buffer_packets = None
        return config


@dataclass(frozen=True)
class InternetScenario(ScenarioFamily):
    """The Internet-analogue family for one of the Table I paths."""

    path_name: str = "INRIA"
    num_connections: int = 1
    history_length: int = 8
    duration: float = 200.0
    capacity_mbps: float = 1.0

    def build(self, seed: Optional[int] = None) -> DumbbellConfig:
        return internet_config(
            self.path_name,
            self.num_connections,
            history_length=self.history_length,
            duration=self.duration,
            capacity_mbps=self.capacity_mbps,
            seed=seed,
        )


@dataclass(frozen=True)
class CustomDumbbellScenario(ScenarioFamily):
    """A fully explicit dumbbell scenario outside the named families."""

    num_tfrc: int = 1
    num_tcp: int = 1
    num_poisson: int = 0
    num_cbr: int = 0
    capacity_mbps: float = 1.5
    rtt_seconds: float = 0.05
    queue_type: str = "red"
    buffer_packets: Optional[int] = None
    red_min_fraction: float = 0.25
    red_max_fraction: float = 1.25
    history_length: int = 8
    tfrc_comprehensive: bool = True
    probe_rate_fraction: float = 0.25
    duration: float = 200.0
    warmup: float = 20.0

    def build(self, seed: Optional[int] = None) -> DumbbellConfig:
        return DumbbellConfig(
            num_tfrc=self.num_tfrc,
            num_tcp=self.num_tcp,
            num_poisson=self.num_poisson,
            num_cbr=self.num_cbr,
            capacity_mbps=self.capacity_mbps,
            rtt_seconds=self.rtt_seconds,
            queue_type=self.queue_type,
            buffer_packets=self.buffer_packets,
            red_min_fraction=self.red_min_fraction,
            red_max_fraction=self.red_max_fraction,
            history_length=self.history_length,
            tfrc_comprehensive=self.tfrc_comprehensive,
            probe_rate_fraction=self.probe_rate_fraction,
            duration=self.duration,
            warmup=self.warmup,
            seed=seed,
        )
