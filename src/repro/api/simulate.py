"""The ``simulate()`` facade: typed configs in, typed results out.

One entry point covers the package's Monte-Carlo evaluation paths:

* :func:`simulate` takes a :class:`SimConfig` (or its dict/JSON form) and
  dispatches to the basic / comprehensive control simulation or to the
  Proposition 1/3 analytic integration, over *any* registered loss
  process and weight profile;
* :func:`simulate_batch` takes a :class:`BatchConfig` describing a whole
  grid of (formula, p, cv, L) -- or (formula, loss process, L) -- points
  and evaluates it in shared numpy passes through
  :mod:`repro.montecarlo.vectorized` (``method="montecarlo"``) or
  :mod:`repro.montecarlo.vectorized_analytic` (``method="analytic"``,
  the Proposition 1/3 integrals), reusing sampled blocks across formula
  variants.  With ``share_noise=True`` (the default for the
  shifted-exponential grid form) a *single* unit-exponential block is
  drawn and rescaled per point -- common random numbers across the whole
  grid -- which both slashes sampling cost and smooths comparisons
  between neighbouring grid points.  With ``share_noise=False`` each
  point is sampled exactly as the scalar path would (same derived seed,
  same draw), so batch and scalar results agree to numerical precision;
  the test suite asserts this equivalence for both methods.

The analytic method applies only to loss processes that *declare*
i.i.d. intervals (``is_iid = True``): Propositions 1 and 3 factorise the
estimator window from the next interval, which fails under correlation.
A process that does not expose the flag at all is rejected rather than
assumed independent.

Both config types and :class:`SimResult` round-trip through plain dicts
and JSON, so a simulation request is data the same way an
:class:`~repro.experiments.spec.ExperimentSpec` is.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from ..lossprocess.base import make_rng
from ..lossprocess.iid import ShiftedExponentialIntervals
from ..montecarlo.basic import analytic_basic_throughput, simulate_basic_control
from ..montecarlo.comprehensive import (
    analytic_comprehensive_throughput,
    simulate_comprehensive_control,
)
from ..montecarlo.sweeps import derive_point_seed
from ..montecarlo.vectorized import (
    evaluate_control_arrays,
    sliding_estimates,
    summarize_rows,
)
from ..montecarlo.vectorized_analytic import (
    affine_basic_throughput_rows,
    analytic_window_estimates,
    basic_throughput_rows,
    comprehensive_throughput_rows,
    stratified_representatives,
)
from .components import FORMULAS, LOSS_PROCESSES, WEIGHT_PROFILES
from .profiles import TfrcWeightProfile

__all__ = ["SimConfig", "SimResult", "BatchConfig", "BatchResult",
           "simulate", "simulate_batch"]

_CONTROLS = ("basic", "comprehensive")
_METHODS = ("montecarlo", "analytic")


def _component_config(registry, value: Any) -> Any:
    """Best-effort serialisation of a component reference for to_dict()."""
    if value is None or isinstance(value, (str, Mapping)):
        return value if not isinstance(value, Mapping) else dict(value)
    try:
        return registry.to_config(value)
    except TypeError:
        return value


def _require_iid(process: Any) -> None:
    """Reject loss processes that do not declare i.i.d. intervals.

    The analytic (Proposition 1/3) paths factorise the estimator window
    from the next interval, which holds only for i.i.d. processes.  The
    default is *rejection*: a process type that does not expose
    ``is_iid`` at all (e.g. a virtual :class:`~repro.lossprocess.base.
    LossProcess` subclass that never inherited the attribute) must not
    silently receive i.i.d. treatment.
    """
    if not getattr(process, "is_iid", False):
        raise ValueError(
            "method='analytic' factorises the estimator window from "
            "the next interval (Propositions 1/3) and is only valid "
            "for loss processes declaring i.i.d. intervals "
            f"(is_iid=True); {type(process).__name__} does not -- use "
            "method='montecarlo'"
        )


@dataclass
class SimConfig:
    """Declarative description of one evaluation point.

    Components may be given as config dicts, kind strings, or ready
    instances; the shifted-exponential default loss process can instead be
    described by ``loss_event_rate`` + ``coefficient_of_variation`` (the
    paper's sweep axes), and the default TFRC weight profile by
    ``history_length`` alone.
    """

    formula: Any
    loss_process: Any = None
    loss_event_rate: Optional[float] = None
    coefficient_of_variation: Optional[float] = None
    profile: Any = None
    history_length: Optional[int] = None
    control: str = "basic"
    method: str = "montecarlo"
    num_events: int = 40_000
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.control not in _CONTROLS:
            raise ValueError(f"control must be one of {_CONTROLS}")
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")
        if self.loss_process is None and self.loss_event_rate is None:
            raise ValueError(
                "specify a loss_process config or a loss_event_rate"
            )
        if self.loss_process is not None and self.loss_event_rate is not None:
            raise ValueError(
                "pass either loss_process or loss_event_rate, not both"
            )
        if (
            self.loss_process is not None
            and self.coefficient_of_variation is not None
        ):
            raise ValueError(
                "coefficient_of_variation parameterises the default "
                "shifted-exponential process and cannot accompany an "
                "explicit loss_process config"
            )
        if self.profile is not None and self.history_length is not None:
            raise ValueError(
                "pass either profile or history_length, not both"
            )
        if self.num_events < 10:
            raise ValueError("num_events must be at least 10")

    # ------------------------------------------------------------------
    # Component resolution
    # ------------------------------------------------------------------
    def resolve_formula(self):
        return FORMULAS.from_config(self.formula)

    def resolve_loss_process(self):
        if self.loss_process is not None:
            return LOSS_PROCESSES.from_config(self.loss_process)
        cv = (
            1.0
            if self.coefficient_of_variation is None
            else float(self.coefficient_of_variation)
        )
        return ShiftedExponentialIntervals.from_loss_rate_and_cv(
            float(self.loss_event_rate), cv
        )

    def resolve_profile(self):
        if self.profile is not None:
            return WEIGHT_PROFILES.from_config(self.profile)
        length = 8 if self.history_length is None else int(self.history_length)
        return TfrcWeightProfile(history_length=length)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["formula"] = _component_config(FORMULAS, self.formula)
        payload["loss_process"] = _component_config(
            LOSS_PROCESSES, self.loss_process
        )
        payload["profile"] = _component_config(WEIGHT_PROFILES, self.profile)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimConfig":
        return cls(**dict(payload))


@dataclass(frozen=True)
class SimResult:
    """Outcome of one evaluation point, JSON-safe via :meth:`to_dict`.

    ``loss_event_rate`` is the nominal (model) rate; for Monte-Carlo runs
    ``empirical_loss_event_rate`` is the rate observed in the sampled
    sequence and is what ``normalized_throughput`` divides by, matching
    the scalar entry points.  Analytic results have no per-event trace,
    so their covariance and estimator-cv fields are ``nan``.
    """

    control: str
    method: str
    formula: Any
    loss_process: Any
    history_length: int
    num_events: int
    seed: Optional[int]
    loss_event_rate: float
    coefficient_of_variation: Optional[float]
    throughput: float
    normalized_throughput: float
    empirical_loss_event_rate: float
    interval_estimate_covariance: float
    estimator_cv: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def simulate(config: Union[SimConfig, Mapping[str, Any]]) -> SimResult:
    """Evaluate one point described by a :class:`SimConfig`."""
    if isinstance(config, Mapping):
        config = SimConfig.from_dict(config)
    with telemetry.span(
        "api.simulate",
        method=config.method,
        control=config.control,
        num_events=config.num_events,
    ):
        return _simulate_resolved(config)


def _simulate_resolved(config: SimConfig) -> SimResult:
    formula = config.resolve_formula()
    process = config.resolve_loss_process()
    profile = config.resolve_profile()
    weights = profile.weights()
    comprehensive = config.control == "comprehensive"

    if config.method == "montecarlo":
        run = (
            simulate_comprehensive_control if comprehensive else simulate_basic_control
        )
        outcome = run(
            formula,
            process,
            num_events=config.num_events,
            weights=weights,
            seed=config.seed,
        )
        throughput = float(outcome.throughput)
        normalized = float(outcome.normalized_throughput)
        empirical = float(outcome.loss_event_rate)
        covariance = float(outcome.interval_estimate_covariance)
        estimator_cv = float(outcome.estimator_cv)
    else:
        _require_iid(process)
        integrate = (
            analytic_comprehensive_throughput
            if comprehensive
            else analytic_basic_throughput
        )
        throughput = float(
            integrate(
                formula,
                process,
                num_samples=config.num_events,
                weights=weights,
                seed=config.seed,
            )
        )
        nominal = process.loss_event_rate
        normalized = throughput / float(formula.rate(nominal))
        empirical = float("nan")
        covariance = float("nan")
        estimator_cv = float("nan")

    return SimResult(
        control=config.control,
        method=config.method,
        formula=_component_config(FORMULAS, formula),
        loss_process=_component_config(LOSS_PROCESSES, process),
        history_length=int(weights.size),
        num_events=config.num_events,
        seed=config.seed,
        loss_event_rate=float(process.loss_event_rate),
        coefficient_of_variation=config.coefficient_of_variation,
        throughput=throughput,
        normalized_throughput=normalized,
        empirical_loss_event_rate=empirical,
        interval_estimate_covariance=covariance,
        estimator_cv=estimator_cv,
    )


# ----------------------------------------------------------------------
# Batch mode
# ----------------------------------------------------------------------
@dataclass
class BatchConfig:
    """A whole grid of evaluation points for :func:`simulate_batch`.

    Two grid forms are supported:

    * ``loss_event_rates`` x ``coefficients_of_variation`` -- the
      shifted-exponential family of the paper's numerical experiments
      (Figures 3 and 4), eligible for the ``share_noise`` fast path;
    * ``loss_processes`` -- an explicit list of loss-process configs
      (Markov, Gilbert, traces, ...), sampled per point.

    Either way the grid is crossed with ``formulas`` and
    ``history_lengths``, and the sampled interval blocks are reused
    across all formula variants.  ``method`` selects the evaluation per
    point: ``"montecarlo"`` runs the control over sampled sequences,
    ``"analytic"`` evaluates the Proposition 1/3 integrals (i.i.d. loss
    processes only, matching the scalar facade's guard).
    """

    formulas: List[Any] = field(default_factory=list)
    history_lengths: List[int] = field(default_factory=lambda: [8])
    loss_event_rates: Optional[List[float]] = None
    coefficients_of_variation: Optional[List[float]] = None
    loss_processes: Optional[List[Any]] = None
    profile: Any = "tfrc"
    control: str = "basic"
    method: str = "montecarlo"
    num_events: int = 20_000
    seed: Optional[int] = None
    share_noise: bool = True
    #: Axis names entering per-point seed derivation.  ``None`` (the
    #: default) keeps the positional rule -- every *multi-valued* batch
    #: axis derives -- while an explicit list pins the derivation to
    #: exactly those axes, the way a campaign spec's ``grid`` keys do
    #: even when single-valued.
    seed_axes: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if not self.formulas:
            raise ValueError("batch needs at least one formula")
        if not self.history_lengths:
            raise ValueError("batch needs at least one history length")
        if self.control not in _CONTROLS:
            raise ValueError(f"control must be one of {_CONTROLS}")
        if self.method not in _METHODS:
            raise ValueError(f"method must be one of {_METHODS}")
        if self.num_events < 10:
            raise ValueError("num_events must be at least 10")
        if self.method == "analytic" and self.num_events < 100:
            # The scalar analytic entry points reject num_samples < 100;
            # the batch must not accept grids its scalar equivalent
            # would fail point for point.
            raise ValueError(
                "method='analytic' needs num_events of at least 100"
            )
        rate_form = (
            self.loss_event_rates is not None
            and self.coefficients_of_variation is not None
        )
        process_form = self.loss_processes is not None
        if rate_form == process_form:
            raise ValueError(
                "specify either loss_event_rates + coefficients_of_variation "
                "or loss_processes"
            )

    # ------------------------------------------------------------------
    def point_seed(self, **axes: Any) -> Optional[int]:
        """The per-point seed the batch derives for the given axis values.

        Mirrors the grid-expansion derivation of
        :func:`repro.montecarlo.sweeps.derive_point_seed` with the same
        axis placement an equivalent :class:`ExperimentSpec` would use.
        With ``seed_axes=None`` only *multi-valued* batch axes enter the
        derivation (a single-valued axis corresponds to a ``base``
        parameter of the spec, which is excluded); an explicit
        ``seed_axes`` list overrides that rule, so a spec whose *grid*
        names a single-valued axis still derives from it.  Either way,
        ``share_noise=False`` batches reproduce the matching campaign
        point for point, to numerical precision.
        """
        filtered = {
            name: value
            for name, value in axes.items()
            if self._axis_in_seed(name)
        }
        return derive_point_seed(self.seed, **filtered)

    def _axis_in_seed(self, name: str) -> bool:
        if self.seed_axes is not None:
            return name in self.seed_axes
        return self._axis_is_gridded(name)

    def _axis_is_gridded(self, name: str) -> bool:
        values = {
            "history_length": self.history_lengths,
            "loss_event_rate": self.loss_event_rates,
            "coefficient_of_variation": self.coefficients_of_variation,
            "loss_process": self.loss_processes,
        }.get(name)
        return values is not None and len(values) > 1

    @property
    def uses_shared_noise(self) -> bool:
        """The effective sampling mode: the shared-block fast path only
        applies to the shifted-exponential (p, cv) grid form."""
        return self.share_noise and self.loss_processes is None

    def profile_for(self, history_length: int):
        """Resolve the weight profile for one window length of the grid.

        ``profile`` is any :data:`~repro.api.WEIGHT_PROFILES` reference;
        the parametric kinds (``tfrc``, ``uniform``) take their window
        length from the batch's ``history_lengths`` axis, while a fixed
        profile (e.g. ``custom``) must match it.
        """
        config = self.profile
        if isinstance(config, str):
            config = {"kind": config}
        if isinstance(config, Mapping):
            config = dict(config)
            if config.get("kind") in ("tfrc", "uniform"):
                config.setdefault("history_length", history_length)
        profile = WEIGHT_PROFILES.from_config(config)
        if profile.history_length != history_length:
            raise ValueError(
                f"profile of length {profile.history_length} does not "
                f"match grid history_length {history_length}"
            )
        return profile

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["formulas"] = [
            _component_config(FORMULAS, formula) for formula in self.formulas
        ]
        payload["profile"] = _component_config(WEIGHT_PROFILES, self.profile)
        if self.loss_processes is not None:
            payload["loss_processes"] = [
                _component_config(LOSS_PROCESSES, process)
                for process in self.loss_processes
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchConfig":
        return cls(**dict(payload))


@dataclass
class BatchResult:
    """All point results of one batch, with a small query helper."""

    config: BatchConfig
    results: List[SimResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def select(self, **criteria: Any) -> List[SimResult]:
        """Filter results by SimResult field values.

        ``formula`` matches the formula config's ``kind``; any other key
        is compared against the result attribute of the same name.
        """
        matches = []
        for result in self.results:
            keep = True
            for key, wanted in criteria.items():
                if key == "formula":
                    actual = (
                        result.formula.get("kind")
                        if isinstance(result.formula, Mapping)
                        else result.formula
                    )
                else:
                    actual = getattr(result, key)
                if isinstance(actual, float) and isinstance(wanted, (int, float)):
                    keep = keep and bool(np.isclose(actual, wanted))
                else:
                    keep = keep and actual == wanted
            if keep:
                matches.append(result)
        return matches

    def one(self, **criteria: Any) -> SimResult:
        """Like :meth:`select` but asserts exactly one match."""
        matches = self.select(**criteria)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one result for {criteria}, found "
                f"{len(matches)}"
            )
        return matches[0]


def _batch_points(
    config: BatchConfig,
) -> List[Dict[str, Any]]:
    """Expand the loss-model axis of the grid (formulas/L crossed later).

    Each point records the sampling axes used for seed derivation plus the
    affine (shift, scale) pair when the shifted-exponential fast path
    applies.
    """
    points: List[Dict[str, Any]] = []
    if config.loss_processes is not None:
        for process_config in config.loss_processes:
            process = LOSS_PROCESSES.from_config(process_config)
            # Seed-axis value: the config exactly as given, so that the
            # derived seeds match a campaign whose grid lists the same
            # config dicts (instances fall back to their canonical
            # config).
            axis_value = (
                process_config
                if isinstance(process_config, (str, Mapping))
                else _component_config(LOSS_PROCESSES, process_config)
            )
            points.append(
                {
                    "process": process,
                    "axes": {"loss_process": axis_value},
                    "loss_event_rate": float(process.loss_event_rate),
                    "coefficient_of_variation": None,
                }
            )
        return points
    for rate in config.loss_event_rates:
        for cv in config.coefficients_of_variation:
            process = ShiftedExponentialIntervals.from_loss_rate_and_cv(
                float(rate), float(cv)
            )
            points.append(
                {
                    "process": process,
                    "axes": {
                        "loss_event_rate": float(rate),
                        "coefficient_of_variation": float(cv),
                    },
                    "loss_event_rate": float(rate),
                    "coefficient_of_variation": float(cv),
                    "shift": process.shift,
                    "scale": 1.0 / process.rate,
                }
            )
    return points


def _shared_noise_arrays(
    config: BatchConfig,
    points: Sequence[Dict[str, Any]],
    history_length: int,
    weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common-random-numbers sampling: one unit-exponential block for all.

    A shifted exponential is an affine map of a unit exponential, and a
    unit-sum moving average commutes with affine maps, so the base block's
    kept/estimate/candidate arrays are computed once per window length and
    rescaled per (p, cv) point.
    """
    longest = max(config.history_lengths)
    rng = make_rng(config.seed)
    # One draw per batch, long enough for the largest window; every window
    # length uses the slice that puts its warm-up just before the shared
    # kept block.
    base = rng.exponential(1.0, size=config.num_events + longest)
    offset = longest - history_length
    kept_base, estimate_base, candidate_base = sliding_estimates(
        base[offset:], weights
    )
    shifts = np.asarray([point["shift"] for point in points], dtype=float)
    scales = np.asarray([point["scale"] for point in points], dtype=float)
    kept = shifts[:, None] + scales[:, None] * kept_base[None, :]
    estimates = shifts[:, None] + scales[:, None] * estimate_base[None, :]
    candidates = shifts[:, None] + scales[:, None] * candidate_base[None, :]
    return kept, estimates, candidates


def _per_point_arrays(
    config: BatchConfig,
    points: Sequence[Dict[str, Any]],
    history_length: int,
    weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Optional[int]]]:
    """Sample each point with its own derived seed, exactly as scalar would."""
    rows = []
    seeds: List[Optional[int]] = []
    for point in points:
        seed = config.point_seed(history_length=history_length, **point["axes"])
        seeds.append(seed)
        rows.append(
            point["process"].sample_intervals(
                config.num_events + history_length, make_rng(seed)
            )
        )
    matrix = np.vstack(rows)
    kept, estimates, candidates = sliding_estimates(matrix, weights)
    return kept, estimates, candidates, seeds


def _normalized_weight_array(weights: np.ndarray) -> np.ndarray:
    """The scalar analytic entry points' weight normalisation, verbatim."""
    weight_array = np.asarray(list(weights), dtype=float)
    return weight_array / weight_array.sum()


def _analytic_point_samples(
    process: Any, num_samples: int, window: int, seed: Optional[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw one point's integration sample exactly as the scalar path.

    Same generator, same draw order (``num_samples * window`` window
    entries first, then ``num_samples`` next intervals), so a matched
    seed reproduces the scalar result.
    """
    rng = make_rng(seed)
    draws = process.sample_intervals(num_samples * window, rng).reshape(
        num_samples, window
    )
    intervals = process.sample_intervals(num_samples, rng)
    return draws, intervals


def _run_batch_analytic(
    config: BatchConfig,
    formulas: Sequence[Any],
    points: Sequence[Dict[str, Any]],
    batch: "BatchResult",
) -> None:
    """Evaluate the grid through the Proposition 1/3 analytic kernels.

    With ``share_noise=False`` every point is integrated over its own
    derived-seed draws (scalar-identical); with ``share_noise=True`` (the
    (p, cv) grid form) one base block of unit-exponential windows is
    rescaled per point, and the basic control additionally goes through
    the stratified factorised fast path -- see
    :mod:`repro.montecarlo.vectorized_analytic`.
    """
    comprehensive = config.control == "comprehensive"
    shared = config.uses_shared_noise
    for point in points:
        _require_iid(point["process"])
    nominal_rates = np.asarray(
        [point["process"].loss_event_rate for point in points], dtype=float
    )
    point_configs = [
        _component_config(LOSS_PROCESSES, point["process"]) for point in points
    ]
    formula_configs = {
        id(formula): _component_config(FORMULAS, formula)
        for formula in formulas
    }
    lengths = [int(length) for length in config.history_lengths]
    weight_arrays = {
        length: _normalized_weight_array(config.profile_for(length).weights())
        for length in lengths
    }
    if shared:
        # One base block of unit-exponential windows for the whole grid
        # (standard_exponential *is* exponential(scale=1), minus a scale
        # pass), and one stacked matmul for every window length's base
        # estimator sample: column j is w_{L_j} zero-padded to the
        # longest window.
        rng = make_rng(config.seed)
        longest = max(lengths)
        base_windows = rng.standard_exponential(
            size=(config.num_events, longest)
        )
        base_intervals = (
            rng.standard_exponential(size=config.num_events)
            if comprehensive
            else None
        )
        stacked_weights = np.zeros((longest, len(lengths)))
        for column, length in enumerate(lengths):
            stacked_weights[:length, column] = weight_arrays[length]
        # (lengths, num_events), C-order: each window length's base
        # estimator sample is a contiguous row for the sort below.
        base_estimate_rows = np.matmul(
            stacked_weights.T, base_windows.T
        )
        shifts = np.asarray([point["shift"] for point in points], dtype=float)
        scales = np.asarray([point["scale"] for point in points], dtype=float)

    for column, history_length in enumerate(lengths):
        weights = weight_arrays[history_length]
        seeds: List[Optional[int]]
        intervals = estimates = next_estimates = None
        representatives = probabilities = None
        if shared:
            seeds = [config.seed] * len(points)
            base_estimates = base_estimate_rows[column]
            if comprehensive:
                base_next = np.concatenate(
                    [base_intervals[:, None],
                     base_windows[:, : history_length - 1]],
                    axis=1,
                ) @ weights
                intervals = (
                    shifts[:, None] + scales[:, None] * base_intervals[None, :]
                )
                estimates = (
                    shifts[:, None] + scales[:, None] * base_estimates[None, :]
                )
                next_estimates = (
                    shifts[:, None] + scales[:, None] * base_next[None, :]
                )
            else:
                representatives, probabilities = stratified_representatives(
                    base_estimates
                )
        else:
            seeds = []
            estimate_rows = []
            next_rows = []
            interval_rows = []
            for point in points:
                seed = config.point_seed(
                    history_length=history_length, **point["axes"]
                )
                seeds.append(seed)
                draws, theta = _analytic_point_samples(
                    point["process"], config.num_events, history_length, seed
                )
                interval_rows.append(theta)
                if comprehensive:
                    now, nxt = analytic_window_estimates(draws, theta, weights)
                    estimate_rows.append(now)
                    next_rows.append(nxt)
                else:
                    estimate_rows.append(draws @ weights)
            intervals = np.vstack(interval_rows)
            estimates = np.vstack(estimate_rows)
            if comprehensive:
                next_estimates = np.vstack(next_rows)

        for formula in formulas:
            if comprehensive:
                throughputs = comprehensive_throughput_rows(
                    formula, intervals, estimates, next_estimates,
                    float(weights[0]),
                )
            elif shared:
                throughputs = affine_basic_throughput_rows(
                    formula, shifts, scales, representatives, probabilities
                )
            else:
                throughputs = basic_throughput_rows(
                    formula, intervals, estimates
                )
            normalized = throughputs / np.asarray(
                formula.rate(nominal_rates), dtype=float
            )
            formula_config = formula_configs[id(formula)]
            for row, point in enumerate(points):
                batch.results.append(
                    SimResult(
                        control=config.control,
                        method="analytic",
                        formula=formula_config,
                        loss_process=point_configs[row],
                        history_length=history_length,
                        num_events=config.num_events,
                        seed=seeds[row],
                        loss_event_rate=point["loss_event_rate"],
                        coefficient_of_variation=point[
                            "coefficient_of_variation"
                        ],
                        throughput=float(throughputs[row]),
                        normalized_throughput=float(normalized[row]),
                        empirical_loss_event_rate=float("nan"),
                        interval_estimate_covariance=float("nan"),
                        estimator_cv=float("nan"),
                    )
                )


def simulate_batch(
    config: Union[BatchConfig, Mapping[str, Any]]
) -> BatchResult:
    """Evaluate a whole grid in shared numpy passes.

    The sampled interval block (and its sliding-window estimator arrays)
    for each (loss model, L) pair is computed once and reused across all
    formula variants; with ``share_noise=True`` a single base block is
    additionally shared across every (p, cv) point.  With
    ``method="analytic"`` the grid goes through the vectorised
    Proposition 1/3 kernels instead of the control simulation.
    """
    if isinstance(config, Mapping):
        config = BatchConfig.from_dict(config)
    formulas = [FORMULAS.from_config(formula) for formula in config.formulas]
    points = _batch_points(config)
    shared = config.uses_shared_noise

    batch = BatchResult(config=config)
    with telemetry.span(
        "api.simulate_batch",
        method=config.method,
        control=config.control,
        grid_points=len(points),
        formulas=len(formulas),
        history_lengths=len(config.history_lengths),
        num_events=config.num_events,
        shared_noise=shared,
    ) as batch_span:
        if config.method == "analytic":
            _run_batch_analytic(config, formulas, points, batch)
        else:
            _run_batch_montecarlo(config, formulas, points, batch)
        batch_span.set("items", len(batch.results))
        telemetry.incr("api.batch.calls")
        telemetry.incr("api.batch.rows", len(batch.results))
    return batch


def _run_batch_montecarlo(
    config: BatchConfig,
    formulas: Sequence[Any],
    points: Sequence[Dict[str, Any]],
    batch: "BatchResult",
) -> None:
    """Evaluate the grid through the vectorised control-simulation kernel."""
    comprehensive = config.control == "comprehensive"
    shared = config.uses_shared_noise
    for history_length in config.history_lengths:
        profile = config.profile_for(int(history_length))
        weights = profile.weights()
        if shared:
            kept, estimates, candidates = _shared_noise_arrays(
                config, points, int(history_length), weights
            )
            seeds: List[Optional[int]] = [config.seed] * len(points)
        else:
            kept, estimates, candidates, seeds = _per_point_arrays(
                config, points, int(history_length), weights
            )
        for formula in formulas:
            rates, durations = evaluate_control_arrays(
                formula,
                kept,
                estimates,
                candidates,
                float(weights[0]),
                comprehensive=comprehensive,
            )
            del rates
            summaries = summarize_rows(formula, kept, estimates, durations)
            formula_config = _component_config(FORMULAS, formula)
            for row, point in enumerate(points):
                batch.results.append(
                    SimResult(
                        control=config.control,
                        method="montecarlo",
                        formula=formula_config,
                        loss_process=_component_config(
                            LOSS_PROCESSES, point["process"]
                        ),
                        history_length=int(history_length),
                        num_events=config.num_events,
                        seed=seeds[row],
                        loss_event_rate=point["loss_event_rate"],
                        coefficient_of_variation=point[
                            "coefficient_of_variation"
                        ],
                        throughput=float(summaries["throughput"][row]),
                        normalized_throughput=float(
                            summaries["normalized_throughput"][row]
                        ),
                        empirical_loss_event_rate=float(
                            summaries["loss_event_rate"][row]
                        ),
                        interval_estimate_covariance=float(
                            summaries["interval_estimate_covariance"][row]
                        ),
                        estimator_cv=float(summaries["estimator_cv"][row]),
                    )
                )
