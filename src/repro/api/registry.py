"""Generic component registry: the one construction idiom of :mod:`repro.api`.

Every configurable component family in the package (loss-throughput
formulas, loss processes, estimator weight profiles, dumbbell scenario
families) is served by one :class:`ComponentRegistry` instance that maps a
string ``kind`` to a component class and converts both ways between
instances and JSON-safe configuration dictionaries::

    registry.register("sqrt", SqrtFormula, example=lambda: SqrtFormula(rtt=0.5))
    obj = registry.from_config({"kind": "sqrt", "rtt": 0.5})
    registry.to_config(obj)   # {"kind": "sqrt", "rtt": 0.5, "b": 2, "c1": ...}

The round trip is exact: ``from_config(to_config(obj)) == obj`` for every
registered component, and ``to_config`` output survives
``json.loads(json.dumps(...))`` unchanged.  That contract is what lets an
:class:`~repro.experiments.spec.ExperimentSpec` express *any* component as
data ("new scenario = new config dict") and is asserted for every
registered kind by the test suite.

Conventions:

* ``kind`` is matched case-insensitively with underscores and hyphens
  interchangeable (``pftk_standard`` == ``pftk-standard``).
* ``from_config`` also accepts a bare kind string (all-default
  construction) and passes instances of the family's base class through
  unchanged, so call sites can take "config or object" arguments.
* A legacy ``name`` key is accepted as an alias for ``kind`` (the shape
  the pre-registry ``formula_to_params`` emitted).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = ["ComponentRegistry"]

Encoder = Callable[[Any], Dict[str, Any]]
Decoder = Callable[[Dict[str, Any]], Any]
ExampleFactory = Callable[[], Any]


def _normalize_kind(kind: str) -> str:
    return kind.strip().lower().replace("_", "-")


def _default_encode(obj: Any) -> Dict[str, Any]:
    """Encode a flat dataclass instance as a parameter dictionary."""
    if not dataclasses.is_dataclass(obj):
        raise TypeError(
            f"{type(obj).__name__} is not a dataclass; register it with an "
            "explicit encode hook"
        )
    return dataclasses.asdict(obj)


@dataclasses.dataclass(frozen=True)
class _Registration:
    kind: str
    cls: type
    encode: Optional[Encoder]
    decode: Optional[Decoder]
    example: Optional[ExampleFactory]


class ComponentRegistry:
    """Registry of one component family, keyed by ``kind`` strings.

    Parameters
    ----------
    family:
        Human-readable family name used in error messages
        (``"formula"``, ``"loss process"``, ...).
    base_class:
        Instances of this class are passed through :meth:`from_config`
        unchanged, so callers can hand either a config or a ready object
        to any API that takes this family.
    """

    def __init__(self, family: str, base_class: type) -> None:
        self.family = family
        self.base_class = base_class
        self._by_kind: Dict[str, _Registration] = {}
        self._kind_by_class: Dict[type, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        kind: str,
        cls: type,
        *,
        encode: Optional[Encoder] = None,
        decode: Optional[Decoder] = None,
        example: Optional[ExampleFactory] = None,
    ) -> None:
        """Register (or replace) a component class under ``kind``.

        Parameters
        ----------
        kind:
            The config name of the component.
        cls:
            The component class.  ``to_config`` serialises instances by
            exact type, so subclasses must be registered separately.
        encode:
            ``instance -> params dict`` (JSON-safe, without the ``kind``
            key).  Defaults to :func:`dataclasses.asdict`, which is exact
            for flat frozen dataclasses.
        decode:
            ``params dict -> instance``.  Defaults to ``cls(**params)``.
            A decode hook can support alternative parameterisations (for
            example the shifted exponential's ``(p, cv)`` form) as long
            as ``encode`` emits one canonical shape.
        example:
            Zero-argument factory returning a representative instance;
            used by the round-trip test suite to cover every kind.
        """
        if not kind:
            raise ValueError("component kind must be non-empty")
        key = _normalize_kind(kind)
        self._by_kind[key] = _Registration(
            kind=key, cls=cls, encode=encode, decode=decode, example=example
        )
        # The first kind registered for a class is its canonical name;
        # later registrations of the same class are constructor aliases.
        self._kind_by_class.setdefault(cls, key)

    def kinds(self) -> List[str]:
        """All registered kinds, sorted."""
        return sorted(self._by_kind)

    def examples(self) -> Dict[str, Any]:
        """A representative instance per kind that declared one."""
        return {
            kind: registration.example()
            for kind, registration in sorted(self._by_kind.items())
            if registration.example is not None
        }

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def from_config(self, config: Any) -> Any:
        """Build a component from a config dict, kind string, or instance."""
        if isinstance(config, self.base_class):
            return config
        if isinstance(config, str):
            config = {"kind": config}
        if not isinstance(config, Mapping):
            raise TypeError(
                f"cannot build a {self.family} from {type(config).__name__}; "
                "expected a config mapping, a kind string, or an instance of "
                f"{self.base_class.__name__}"
            )
        params = dict(config)
        kind = params.pop("kind", None)
        if kind is None:
            kind = params.pop("name", None)  # legacy key
        if kind is None:
            raise ValueError(
                f"{self.family} config needs a 'kind' entry; got keys "
                f"{sorted(config)}"
            )
        params.pop("name", None)  # tolerate both keys side by side
        registration = self._lookup(kind)
        if registration.decode is not None:
            return registration.decode(params)
        return registration.cls(**params)

    def to_config(self, obj: Any) -> Dict[str, Any]:
        """Describe a component instance as a JSON-safe config dictionary."""
        kind = self._kind_by_class.get(type(obj))
        if kind is None:
            raise TypeError(
                f"cannot serialise {self.family} of type {type(obj).__name__}; "
                f"registered kinds are {self.kinds()}"
            )
        registration = self._by_kind[kind]
        encode = registration.encode or _default_encode
        params = encode(obj)
        return {"kind": kind, **params}

    # ------------------------------------------------------------------
    def _lookup(self, kind: str) -> _Registration:
        key = _normalize_kind(str(kind))
        try:
            return self._by_kind[key]
        except KeyError:
            raise KeyError(
                f"unknown {self.family} kind {kind!r}; registered kinds are "
                f"{self.kinds()}"
            ) from None
