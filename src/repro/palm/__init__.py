"""Palm-calculus and statistics substrate.

Event versus time averages, the Palm inversion formula, Feller-paradox
diagnostics, covariance/autocovariance estimators, and the bin-based
estimation methodology used in the paper's experiments.
"""

from .estimators import (
    event_average,
    feller_gap,
    intensity,
    length_biased_average,
    palm_inversion_throughput,
    time_average_piecewise_constant,
)
from .statistics import (
    BinnedEstimate,
    autocorrelation,
    autocovariance,
    binned_estimates,
    coefficient_of_variation,
    correlation,
    covariance,
    mean_confidence_interval,
    normalized_interval_covariance,
    split_into_bins,
)

__all__ = [
    "event_average",
    "time_average_piecewise_constant",
    "palm_inversion_throughput",
    "intensity",
    "length_biased_average",
    "feller_gap",
    "covariance",
    "correlation",
    "autocovariance",
    "autocorrelation",
    "coefficient_of_variation",
    "normalized_interval_covariance",
    "split_into_bins",
    "BinnedEstimate",
    "binned_estimates",
    "mean_confidence_interval",
]
