"""Statistical helpers: covariance, autocovariance, binning, intervals.

These utilities back the empirical evaluation machinery: the covariance
conditions (C1), (C2), the normalised covariance plotted in Figure 10,
the per-bin estimates used by the lab/Internet experiment methodology
(Section V-A.3 computes estimates over 6 consecutive bins of an
experiment), and simple confidence intervals on the resulting binned
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "covariance",
    "correlation",
    "autocovariance",
    "autocorrelation",
    "coefficient_of_variation",
    "normalized_interval_covariance",
    "split_into_bins",
    "BinnedEstimate",
    "binned_estimates",
    "mean_confidence_interval",
]


def covariance(x: Sequence[float], y: Sequence[float]) -> float:
    """Sample covariance (ddof = 1) between two equal-length sequences."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape or x_array.ndim != 1:
        raise ValueError("x and y must be 1-D sequences of equal length")
    if x_array.size < 2:
        return 0.0
    return float(np.cov(x_array, y_array, ddof=1)[0, 1])


def correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient; zero if either input is constant."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape or x_array.ndim != 1:
        raise ValueError("x and y must be 1-D sequences of equal length")
    if x_array.size < 2:
        return 0.0
    x_std = float(np.std(x_array))
    y_std = float(np.std(y_array))
    # lint: allow[hygiene-float-eq] np.std returns exact 0.0 for constants
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(np.corrcoef(x_array, y_array)[0, 1])


def autocovariance(values: Sequence[float], lag: int) -> float:
    """Empirical autocovariance at the given lag (biased normalisation).

    Used to evaluate ``cov[theta_0, theta_{-l}]`` in the weighted sum of
    equation (11).
    """
    if lag < 0:
        raise ValueError("lag must be non-negative")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if lag >= array.size:
        return 0.0
    centered = array - array.mean()
    if lag == 0:
        return float(np.mean(centered**2))
    return float(np.mean(centered[:-lag] * centered[lag:]))


def autocorrelation(values: Sequence[float], lag: int) -> float:
    """Autocovariance normalised by the variance; zero for constant input."""
    variance = autocovariance(values, 0)
    # lint: allow[hygiene-float-eq] exact zero-variance guard
    if variance == 0.0:
        return 0.0
    return autocovariance(values, lag) / variance


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by the mean."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    mean = float(np.mean(array))
    # lint: allow[hygiene-float-eq] exact zero-mean guard (division)
    if mean == 0.0:
        raise ValueError("mean is zero; coefficient of variation undefined")
    return float(np.std(array) / mean)


def normalized_interval_covariance(
    intervals: Sequence[float], estimates: Sequence[float]
) -> float:
    """Return ``cov[theta_0, theta_hat_0] * p^2`` (Figure 10's quantity)."""
    interval_array = np.asarray(intervals, dtype=float)
    mean_interval = float(np.mean(interval_array))
    if mean_interval <= 0.0:
        raise ValueError("intervals must have a positive mean")
    loss_event_rate = 1.0 / mean_interval
    return covariance(intervals, estimates) * loss_event_rate**2


def split_into_bins(values: Sequence[float], num_bins: int) -> List[np.ndarray]:
    """Split a sequence into ``num_bins`` consecutive, nearly equal chunks.

    Mirrors the experimental methodology of Section V-A.3 (estimates
    computed over 6 consecutive bins after discarding a warm-up prefix).
    """
    if num_bins < 1:
        raise ValueError("num_bins must be at least 1")
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if num_bins > array.size:
        raise ValueError("cannot create more bins than there are values")
    return [chunk for chunk in np.array_split(array, num_bins) if chunk.size > 0]


@dataclass(frozen=True)
class BinnedEstimate:
    """Mean and dispersion of a statistic computed over consecutive bins."""

    per_bin: Tuple[float, ...]
    mean: float
    standard_error: float

    @property
    def num_bins(self) -> int:
        return len(self.per_bin)


def binned_estimates(values: Sequence[float], num_bins: int) -> BinnedEstimate:
    """Compute the per-bin means of a sequence and their standard error."""
    bins = split_into_bins(values, num_bins)
    per_bin = tuple(float(np.mean(chunk)) for chunk in bins)
    mean = float(np.mean(per_bin))
    if len(per_bin) > 1:
        standard_error = float(np.std(per_bin, ddof=1) / np.sqrt(len(per_bin)))
    else:
        standard_error = 0.0
    return BinnedEstimate(per_bin=per_bin, mean=mean, standard_error=standard_error)


def mean_confidence_interval(
    values: Sequence[float], z_score: float = 1.96
) -> Tuple[float, float, float]:
    """Return ``(mean, lower, upper)`` for a normal-approximation CI."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    mean = float(np.mean(array))
    if array.size < 2:
        return mean, mean, mean
    half_width = z_score * float(np.std(array, ddof=1) / np.sqrt(array.size))
    return mean, mean - half_width, mean + half_width
