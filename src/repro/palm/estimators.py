"""Palm-calculus estimators: event averages versus time averages.

The paper's analysis lives in the framework of stationary point processes
and Palm probabilities: the loss events form a point process with
intensity ``lambda``; quantities like the send rate have both a
*time-average* (the standard expectation ``E``, seen at an arbitrary point
in time) and an *event-average* (the Palm expectation ``E0_N``, seen at an
arbitrary loss event).  The Palm inversion formula connects the two::

    E[X(0)] = lambda * E0_N[ integral_0^{T_1} X(s) ds ]

and the Feller ("bus stop") paradox explains why the two averages differ
when the sampled quantity is correlated with the interval length.

This module provides empirical estimators for these quantities from
per-event records ``(S_n, value_n)``:

* :func:`event_average` -- plain average over events,
* :func:`time_average_piecewise_constant` -- time average of a quantity
  held constant within each interval (the basic control's rate),
* :func:`palm_inversion_throughput` -- packets sent over time elapsed,
* :func:`intensity` -- events per unit time,
* :func:`length_biased_average` -- the average an observer arriving at a
  uniformly random time would see, illustrating the Feller paradox.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "event_average",
    "time_average_piecewise_constant",
    "palm_inversion_throughput",
    "intensity",
    "length_biased_average",
    "feller_gap",
]


def _validate_pair(durations: np.ndarray, values: np.ndarray) -> None:
    if durations.shape != values.shape:
        raise ValueError("durations and values must have the same shape")
    if durations.ndim != 1 or durations.size == 0:
        raise ValueError("inputs must be non-empty 1-D arrays")
    if np.any(durations <= 0.0):
        raise ValueError("durations must be strictly positive")


def event_average(values: Sequence[float]) -> float:
    """Return the Palm (event) average ``E0_N[value]``."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    return float(np.mean(array))


def time_average_piecewise_constant(
    durations: Sequence[float], values: Sequence[float]
) -> float:
    """Return the time average of a piecewise-constant quantity.

    ``values[n]`` is the value held on an interval of length
    ``durations[n]``; the time average weighs each value by its interval
    length (this is the standard expectation ``E`` for the basic control's
    send rate).
    """
    duration_array = np.asarray(durations, dtype=float)
    value_array = np.asarray(values, dtype=float)
    _validate_pair(duration_array, value_array)
    return float(np.average(value_array, weights=duration_array))


def palm_inversion_throughput(
    durations: Sequence[float], packets: Sequence[float]
) -> float:
    """Return throughput via the Palm inversion formula.

    ``E[X(0)] = E0_N[packets per interval] / E0_N[interval duration]`` --
    i.e. total packets over total time, the "cycle formula" the paper
    builds Proposition 1 on.
    """
    duration_array = np.asarray(durations, dtype=float)
    packet_array = np.asarray(packets, dtype=float)
    _validate_pair(duration_array, packet_array)
    return float(np.sum(packet_array) / np.sum(duration_array))


def intensity(durations: Sequence[float]) -> float:
    """Return the point-process intensity ``lambda`` (events per second)."""
    duration_array = np.asarray(durations, dtype=float)
    if duration_array.ndim != 1 or duration_array.size == 0:
        raise ValueError("durations must be a non-empty 1-D sequence")
    if np.any(duration_array <= 0.0):
        raise ValueError("durations must be strictly positive")
    return float(duration_array.size / np.sum(duration_array))


def length_biased_average(
    durations: Sequence[float], values: Sequence[float]
) -> float:
    """Average of ``values`` as seen by an observer at a random time.

    The observer is more likely to land in a long interval, so the average
    is length-biased: ``E[value at random time] = E0_N[S value] / E0_N[S]``.
    Identical to :func:`time_average_piecewise_constant`; kept as a
    separate name to make Feller-paradox arguments in the tests and
    examples read like the paper.
    """
    return time_average_piecewise_constant(durations, values)


def feller_gap(durations: Sequence[float], values: Sequence[float]) -> float:
    """Return ``E0_N[value] - E[value at random time]``.

    Positive when the value is negatively correlated with the interval
    length (the random observer sees smaller values), which is exactly the
    mechanism behind the first part of Theorem 2.
    """
    return event_average(values) - length_biased_average(durations, values)
