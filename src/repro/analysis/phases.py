"""Phased loss processes: when the covariance condition (C1) fails.

Theorem 1's conservativeness conclusion rests on the loss-event interval
estimator being a *bad predictor* of the next interval
(``cov[theta_0, theta_hat_0] <= 0``).  Section III-B.2 of the paper points
out a realistic situation where this fails: the loss process moves through
phases (congestion / no congestion) with slow transitions, the intervals
become highly predictable, and the send rate roughly follows the phases --
condition (C2c) of Theorem 2 can then hold together with the convexity of
``f(1/x)`` (PFTK under heavy loss), making the control non-conservative.

This module packages that study: drive the basic or comprehensive control
with a two-phase Markov-modulated loss process, report the covariance
diagnostics and the normalized throughput, and sweep the phase-switching
probability to show the transition from the Theorem 1 regime (fast
switching, near-i.i.d., conservative) to the predictable-phases regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.control import BasicControl, ComprehensiveControl
from ..core.estimator import tfrc_weights
from ..core.formulas import LossThroughputFormula
from ..lossprocess.base import make_rng
from ..lossprocess.markov import two_phase_process
from ..palm.statistics import normalized_interval_covariance

__all__ = ["PhaseStudyPoint", "phase_study", "switching_sweep"]


@dataclass(frozen=True)
class PhaseStudyPoint:
    """Outcome of driving the control with one phased loss process.

    Attributes
    ----------
    switch_probability:
        Per-loss-event probability of changing phase.
    normalized_throughput:
        ``x_bar / f(p)`` of the run.
    normalized_covariance:
        ``cov[theta_0, theta_hat_0] p^2`` -- positive values mean the
        estimator predicts the next interval well (condition (C1) fails).
    rate_duration_covariance:
        ``cov[X_0, S_0]`` -- the Theorem 2 covariance.
    loss_event_rate:
        Empirical loss-event rate of the run.
    """

    switch_probability: float
    normalized_throughput: float
    normalized_covariance: float
    rate_duration_covariance: float
    loss_event_rate: float


def phase_study(
    formula: LossThroughputFormula,
    switch_probability: float,
    good_mean: float = 60.0,
    bad_mean: float = 4.0,
    history_length: int = 8,
    num_events: int = 40_000,
    comprehensive: bool = False,
    seed: Optional[int] = None,
) -> PhaseStudyPoint:
    """Drive the control with a two-phase loss process and summarise it.

    Parameters
    ----------
    formula:
        Loss-throughput formula of the control.
    switch_probability:
        Phase-change probability per loss event; small values produce long,
        predictable phases.
    good_mean, bad_mean:
        Mean loss-event interval (packets) in the good and congested phase.
    history_length:
        Estimator window ``L`` (TFRC weight profile).
    num_events:
        Loss events to simulate after estimator warm-up.
    comprehensive:
        Use the comprehensive control instead of the basic one.
    seed:
        Random seed.
    """
    if num_events < 100:
        raise ValueError("num_events must be at least 100")
    process = two_phase_process(
        good_mean=good_mean, bad_mean=bad_mean, switch_probability=switch_probability
    )
    rng = make_rng(seed)
    window = history_length
    intervals = process.sample_intervals(num_events + window, rng)
    control_class = ComprehensiveControl if comprehensive else BasicControl
    control = control_class(formula, weights=tfrc_weights(history_length))
    trace = control.run(intervals, warmup=window)
    return PhaseStudyPoint(
        switch_probability=float(switch_probability),
        normalized_throughput=trace.normalized_throughput(formula),
        normalized_covariance=normalized_interval_covariance(
            trace.intervals, trace.estimates
        ),
        rate_duration_covariance=trace.rate_duration_covariance(),
        loss_event_rate=trace.loss_event_rate,
    )


def switching_sweep(
    formula: LossThroughputFormula,
    switch_probabilities: Sequence[float] = (0.5, 0.2, 0.1, 0.05, 0.02, 0.01),
    good_mean: float = 60.0,
    bad_mean: float = 4.0,
    history_length: int = 8,
    num_events: int = 40_000,
    comprehensive: bool = False,
    seed: Optional[int] = 23,
) -> List[PhaseStudyPoint]:
    """Sweep the phase-switching probability from fast to slow phases.

    Fast switching approximates i.i.d. intervals (Theorem 1 regime); slow
    switching produces predictable phases where the normalised covariance
    turns positive and -- depending on the convexity of the formula in the
    visited region -- the control may cease to be conservative.
    """
    points = []
    for index, probability in enumerate(switch_probabilities):
        point_seed = None if seed is None else seed + index
        points.append(
            phase_study(
                formula,
                probability,
                good_mean=good_mean,
                bad_mean=bad_mean,
                history_length=history_length,
                num_events=num_events,
                comprehensive=comprehensive,
                seed=point_seed,
            )
        )
    return points
