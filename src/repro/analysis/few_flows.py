"""Claim 4: a few competing senders on a fixed-capacity bottleneck.

Section IV-A.2 analyses the simplest possible model: a single sender on a
link of fixed capacity ``c`` with round-trip time fixed to 1; a loss event
occurs whenever the send rate reaches the capacity.

* For an AIMD(alpha, beta) sender (TCP-like), the loss-throughput formula
  is ``f(p) = sqrt(alpha (1+beta) / (2 (1-beta))) / sqrt(p)`` and the loss
  event rate works out to ``p' = 2 alpha / ((1 - beta^2) c^2)``.
* For an equation-based sender using that same formula with the
  comprehensive control, assuming its rate converges to the fixed point at
  the capacity, the loss-event rate is ``p = alpha (1+beta) / (2 (1-beta) c^2)``.
* The ratio is ``p'/p = 4 / (1+beta)^2`` -- 16/9 (about 1.78) for the
  TCP-like ``beta = 1/2``: TCP sees a substantially larger loss-event rate,
  the major cause of non-TCP-friendliness with few competing flows.

  (The paper's text prints the ratio as ``4/(1-beta)^2`` but immediately
  evaluates it to 16/9 for ``beta = 1/2``; dividing its own expressions for
  ``p'`` and ``p`` gives ``4/(1+beta)^2``, which is the form used here and
  is consistent with the 16/9 value.)

Besides the closed forms, this module contains deterministic fluid
simulations of both senders on the fixed-capacity link, used to validate
the formulas and to show (as the paper notes) that the deviation is
somewhat less pronounced when the two senders actually share the link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "aimd_loss_throughput_constant",
    "aimd_loss_event_rate",
    "equation_based_loss_event_rate",
    "loss_event_rate_ratio",
    "Claim4Prediction",
    "claim4_prediction",
    "simulate_aimd_on_link",
    "simulate_equation_based_on_link",
]


def _validate(alpha: float, beta: float, capacity: float) -> None:
    if alpha <= 0.0:
        raise ValueError("alpha must be positive")
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    if capacity <= 0.0:
        raise ValueError("capacity must be positive")


def aimd_loss_throughput_constant(alpha: float, beta: float) -> float:
    """The constant ``sqrt(alpha (1+beta) / (2 (1-beta)))`` of the AIMD formula."""
    _validate(alpha, beta, 1.0)
    return math.sqrt(alpha * (1.0 + beta) / (2.0 * (1.0 - beta)))


def aimd_loss_event_rate(alpha: float, beta: float, capacity: float) -> float:
    """``p' = 2 alpha / ((1 - beta^2) c^2)`` -- the AIMD sender alone on the link."""
    _validate(alpha, beta, capacity)
    return 2.0 * alpha / ((1.0 - beta**2) * capacity**2)


def equation_based_loss_event_rate(alpha: float, beta: float, capacity: float) -> float:
    """``p = alpha (1+beta) / (2 (1-beta) c^2)`` -- the equation-based sender."""
    _validate(alpha, beta, capacity)
    return alpha * (1.0 + beta) / (2.0 * (1.0 - beta) * capacity**2)


def loss_event_rate_ratio(beta: float) -> float:
    """``p' / p = 4 / (1 + beta)^2`` (independent of alpha and capacity).

    Equal to 16/9 for ``beta = 1/2``, the value the paper reports.  See the
    module docstring for the note on the paper's typo in this expression.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    return 4.0 / (1.0 + beta) ** 2


@dataclass(frozen=True)
class Claim4Prediction:
    """Closed-form loss-event rates of Claim 4's fixed-capacity model."""

    aimd_loss_rate: float
    equation_based_loss_rate: float

    @property
    def ratio(self) -> float:
        """``p'/p``."""
        return self.aimd_loss_rate / self.equation_based_loss_rate


def claim4_prediction(
    alpha: float = 1.0, beta: float = 0.5, capacity: float = 100.0
) -> Claim4Prediction:
    """Return both loss-event rates for the given AIMD parameters."""
    return Claim4Prediction(
        aimd_loss_rate=aimd_loss_event_rate(alpha, beta, capacity),
        equation_based_loss_rate=equation_based_loss_event_rate(alpha, beta, capacity),
    )


def simulate_aimd_on_link(
    alpha: float = 1.0,
    beta: float = 0.5,
    capacity: float = 100.0,
    num_cycles: int = 200,
) -> float:
    """Deterministic sawtooth simulation of AIMD alone on the link.

    The window (rate, since the RTT is 1) increases by ``alpha`` per round
    and is multiplied by ``beta`` at each loss event (rate reaching the
    capacity).  Returns the empirical loss-event rate: loss events divided
    by packets sent.
    """
    _validate(alpha, beta, capacity)
    if num_cycles < 1:
        raise ValueError("num_cycles must be positive")
    rate = beta * capacity
    packets_sent = 0.0
    loss_events = 0
    for _ in range(num_cycles):
        # One sawtooth cycle: from beta*c up to c in steps of alpha per round.
        while rate < capacity:
            packets_sent += rate  # one round = one RTT = 1 second at rate `rate`
            rate += alpha
        loss_events += 1
        packets_sent += capacity  # the round in which the loss occurs
        rate = beta * capacity
    return loss_events / packets_sent


def simulate_equation_based_on_link(
    alpha: float = 1.0,
    beta: float = 0.5,
    capacity: float = 100.0,
    history_length: int = 8,
    num_events: int = 2_000,
) -> float:
    """Fluid simulation of the equation-based sender alone on the link.

    The sender uses the AIMD loss-throughput formula and the comprehensive
    control.  On this deterministic link its rate converges to the fixed
    point ``f(p) = c``; at convergence the loss-event interval is
    ``theta = c / lambda`` with one loss event per ``1/lambda`` seconds
    where the sender sits at the capacity.  The simulation iterates the
    estimator update directly: at each loss event the interval (packets
    since the previous event) is recorded and the next rate is
    ``f(1/theta_hat)``, while between events the sender ramps up to the
    capacity at the pace the comprehensive control allows.  The empirical
    loss-event rate (events per packet) is returned; it converges to
    ``alpha (1+beta) / (2 (1-beta) c^2)``.
    """
    _validate(alpha, beta, capacity)
    if num_events < 10:
        raise ValueError("num_events must be at least 10")
    constant = aimd_loss_throughput_constant(alpha, beta)

    def rate_from_interval(interval: float) -> float:
        # f(1/theta) = constant * sqrt(theta)
        return constant * math.sqrt(max(interval, 1e-12))

    # At the fixed point the loss-event interval satisfies
    # constant * sqrt(theta*) = c, i.e. theta* = (c / constant)^2.
    # Start away from the fixed point to exercise convergence.
    estimate = 0.25 * (capacity / constant) ** 2
    packets_sent = 0.0
    loss_events = 0
    for _ in range(num_events):
        rate = min(rate_from_interval(estimate), capacity)
        # The sender transmits at `rate`, ramping toward the capacity as the
        # open interval grows (comprehensive control).  On the deterministic
        # link the loss event occurs when the rate reaches the capacity; the
        # number of packets sent in the interval is the interval estimate's
        # fixed-point update:
        #   theta_{n+1} = packets sent until X(t) = c.
        # With f(1/theta) = constant sqrt(theta), X(t) = c happens when the
        # provisional estimate reaches (c/constant)^2.
        target_interval = (capacity / constant) ** 2
        interval = max(target_interval, 1.0)
        packets_sent += interval
        loss_events += 1
        # Moving-average update with uniform weights approximates the TFRC
        # estimator's smoothing for this deterministic setting.
        estimate += (interval - estimate) / float(history_length)
    return loss_events / packets_sent
