"""Comparative analyses: loss-event rate ordering and friendliness breakdown."""

from .breakdown import (
    PairBreakdown,
    aggregate_breakdown,
    loss_rate_ratio,
    pair_breakdowns,
    throughput_ratio,
)
from .few_flows import (
    Claim4Prediction,
    aimd_loss_event_rate,
    aimd_loss_throughput_constant,
    claim4_prediction,
    equation_based_loss_event_rate,
    loss_event_rate_ratio,
    simulate_aimd_on_link,
    simulate_equation_based_on_link,
)
from .phases import PhaseStudyPoint, phase_study, switching_sweep
from .shortflow import (
    ShortFlowFriendliness,
    ShortFlowPoint,
    compare_latency_models,
    shortflow_friendliness,
)
from .many_sources import (
    Claim3Result,
    CongestionModel,
    claim3_loss_event_rates,
    equation_based_rate_profile,
    poisson_source_rate_profile,
    responsive_source_rate_profile,
    sampled_loss_event_rate,
    simulate_congestion_sampling,
)

__all__ = [
    "CongestionModel",
    "sampled_loss_event_rate",
    "poisson_source_rate_profile",
    "responsive_source_rate_profile",
    "equation_based_rate_profile",
    "claim3_loss_event_rates",
    "Claim3Result",
    "simulate_congestion_sampling",
    "aimd_loss_throughput_constant",
    "aimd_loss_event_rate",
    "equation_based_loss_event_rate",
    "loss_event_rate_ratio",
    "Claim4Prediction",
    "claim4_prediction",
    "simulate_aimd_on_link",
    "simulate_equation_based_on_link",
    "PhaseStudyPoint",
    "phase_study",
    "switching_sweep",
    "ShortFlowPoint",
    "ShortFlowFriendliness",
    "shortflow_friendliness",
    "compare_latency_models",
    "PairBreakdown",
    "pair_breakdowns",
    "aggregate_breakdown",
    "loss_rate_ratio",
    "throughput_ratio",
]
