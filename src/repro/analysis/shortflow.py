"""Short-flow friendliness: finite transfers vs the long-flow asymptote.

The paper's TCP-friendliness claims (and the breakdown of
:mod:`repro.core.friendliness`) are phrased for long-lived flows, where
the equation-based source and the competing TCP both sit at their
steady-state rates.  A finite transfer never reaches that asymptote: the
handshake, the initial slow-start and the timeout cost of the CSA00
latency model (:mod:`repro.core.shortflow`) are paid before any
steady-state behaviour, so the *effective* rate ``size / E[latency]``
of a short flow sits below ``f(p, r)`` and climbs towards it with size.

This module reuses the four-sub-condition machinery verbatim: for each
transfer size, the short flow becomes the ``source``
:class:`~repro.core.friendliness.FlowObservation` (throughput = the
model's effective rate) and an idealised long-lived TCP at the same
loss-event rate and RTT becomes the ``tcp`` observation (throughput =
the formula prediction at that RTT).  The resulting
:class:`~repro.core.friendliness.FriendlinessBreakdown` then isolates
exactly the conservativeness axis: loss-rate and RTT orderings are one
by construction, and ``throughput_ratio`` equals the short-over-steady
rate ratio -- the friendliness-vs-flow-size curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.formulas import LossThroughputFormula
from ..core.friendliness import FlowObservation, FriendlinessBreakdown, breakdown
from ..core.shortflow import LatencyModel

__all__ = [
    "ShortFlowPoint",
    "ShortFlowFriendliness",
    "shortflow_friendliness",
    "compare_latency_models",
]


@dataclass(frozen=True)
class ShortFlowPoint:
    """One transfer size on the friendliness-vs-flow-size curve."""

    transfer_size: float
    latency: float
    transfer_rate: float
    steady_state_rate: float
    breakdown: FriendlinessBreakdown

    @property
    def rate_ratio(self) -> float:
        """Effective over steady-state rate (== ``throughput_ratio``)."""
        return self.breakdown.throughput_ratio


@dataclass(frozen=True)
class ShortFlowFriendliness:
    """The friendliness-vs-flow-size curve of one (model, formula) pair."""

    label: str
    loss_event_rate: float
    rtt: float
    points: Tuple[ShortFlowPoint, ...]

    def rate_ratios(self) -> Tuple[float, ...]:
        """The short-over-steady rate ratio per transfer size."""
        return tuple(point.rate_ratio for point in self.points)

    def crossover_size(self, threshold: float = 0.5) -> Optional[float]:
        """Smallest swept size reaching ``threshold`` of steady state.

        Returns ``None`` when no swept size reaches it -- every transfer
        in the sweep stays further below the long-flow asymptote than
        the threshold allows.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        for point in self.points:
            if point.rate_ratio >= threshold:
                return point.transfer_size
        return None


def shortflow_friendliness(
    model: LatencyModel,
    formula: LossThroughputFormula,
    sizes: Sequence[float],
    loss_event_rate: float,
    label: str = "short-flow",
) -> ShortFlowFriendliness:
    """Friendliness-vs-flow-size breakdown of one latency model.

    Parameters
    ----------
    model:
        The short-flow latency model; its ``rtt`` fixes the round-trip
        time of both observations.
    formula:
        The steady-state loss-throughput formula playing the long-lived
        TCP.  Its prediction is rescaled to the model's RTT through
        :meth:`~repro.core.friendliness.FlowObservation.
        formula_prediction`, exactly as measured flows are.
    sizes:
        Transfer sizes in packets, ascending for a meaningful
        :meth:`~ShortFlowFriendliness.crossover_size`.
    loss_event_rate:
        The shared loss-event rate ``p`` seen by both flows.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    rtt = float(model.rtt)
    points = []
    for size in sizes:
        size = float(size)
        latency = float(model.latency(size, loss_event_rate))
        source = FlowObservation(
            throughput=size / latency,
            loss_event_rate=loss_event_rate,
            mean_rtt=rtt,
            label=label,
        )
        tcp = FlowObservation(
            throughput=float(formula.rate(loss_event_rate))
            * float(formula.rtt)
            / rtt,
            loss_event_rate=loss_event_rate,
            mean_rtt=rtt,
            label="tcp",
        )
        points.append(
            ShortFlowPoint(
                transfer_size=size,
                latency=latency,
                transfer_rate=source.throughput,
                steady_state_rate=tcp.throughput,
                breakdown=breakdown(source, tcp, formula),
            )
        )
    return ShortFlowFriendliness(
        label=label,
        loss_event_rate=float(loss_event_rate),
        rtt=rtt,
        points=tuple(points),
    )


def compare_latency_models(
    models: Mapping[str, LatencyModel],
    formula: LossThroughputFormula,
    sizes: Sequence[float],
    loss_event_rate: float,
) -> Dict[str, ShortFlowFriendliness]:
    """The cross-model friendliness-vs-flow-size comparison.

    One :func:`shortflow_friendliness` curve per named model (e.g. CSA00
    at different initial windows or RTO settings) against the same
    steady-state formula, keyed and labelled by the mapping's keys.
    """
    return {
        name: shortflow_friendliness(
            model, formula, sizes, loss_event_rate, label=name
        )
        for name, model in models.items()
    }
