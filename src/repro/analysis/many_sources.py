"""Claim 3: the many-sources limit and the congestion-process sampling formula.

Section IV-A.1 models the network as a congestion process ``Z(t)`` over a
countable state space, with per-state loss-event rate ``p_i`` and
stationary distribution ``pi_i``.  In the separation-of-timescales limit
(the congestion process evolves slower than the control), the loss-event
rate experienced by a source whose conditional time-average send rate in
state ``i`` is ``x_i`` is (equation (13))::

    p  ->  sum_i p_i x_i pi_i / sum_i x_i pi_i

A non-adaptive source has ``x_i`` independent of ``i`` and therefore sees
the time-average loss-event rate ``p'' = sum_i pi_i p_i``; a perfectly
responsive source (TCP) concentrates its traffic in the good states and
sees a smaller value; an equation-based source with averaging window ``L``
is in between, approaching TCP as it becomes more responsive (small ``L``).
This gives Claim 3's ordering ``p' <= p <= p''``.

The module provides the sampling formula, responsiveness models for the
three source types, and a discrete-event validation that samples the
congestion process directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.formulas import LossThroughputFormula

__all__ = [
    "CongestionModel",
    "sampled_loss_event_rate",
    "poisson_source_rate_profile",
    "responsive_source_rate_profile",
    "equation_based_rate_profile",
    "claim3_loss_event_rates",
    "Claim3Result",
    "simulate_congestion_sampling",
]


@dataclass(frozen=True)
class CongestionModel:
    """A finite-state congestion process in the many-sources limit.

    Attributes
    ----------
    stationary_probabilities:
        ``pi_i`` -- stationary probability of each congestion state.
    loss_event_rates:
        ``p_i`` -- loss-event rate (per packet) in each state.
    """

    stationary_probabilities: np.ndarray
    loss_event_rates: np.ndarray

    def __post_init__(self) -> None:
        probabilities = np.asarray(self.stationary_probabilities, dtype=float)
        rates = np.asarray(self.loss_event_rates, dtype=float)
        object.__setattr__(self, "stationary_probabilities", probabilities)
        object.__setattr__(self, "loss_event_rates", rates)
        if probabilities.ndim != 1 or probabilities.size == 0:
            raise ValueError("stationary_probabilities must be a non-empty 1-D array")
        if probabilities.shape != rates.shape:
            raise ValueError("probabilities and rates must have the same shape")
        if np.any(probabilities < 0.0) or not np.isclose(probabilities.sum(), 1.0):
            raise ValueError("stationary_probabilities must be a probability vector")
        if np.any(rates <= 0.0) or np.any(rates > 1.0):
            raise ValueError("loss_event_rates must be in (0, 1]")

    @property
    def num_states(self) -> int:
        return self.stationary_probabilities.size

    def time_average_loss_rate(self) -> float:
        """``p'' = sum_i pi_i p_i`` -- what a non-adaptive source sees."""
        return float(np.dot(self.stationary_probabilities, self.loss_event_rates))

    @classmethod
    def two_state(
        cls,
        good_loss_rate: float = 0.005,
        bad_loss_rate: float = 0.1,
        bad_probability: float = 0.3,
    ) -> "CongestionModel":
        """A simple good/congested two-state model used in examples/tests."""
        if not 0.0 < bad_probability < 1.0:
            raise ValueError("bad_probability must be in (0, 1)")
        return cls(
            stationary_probabilities=np.array([1.0 - bad_probability, bad_probability]),
            loss_event_rates=np.array([good_loss_rate, bad_loss_rate]),
        )


def sampled_loss_event_rate(
    model: CongestionModel, rate_profile: Sequence[float]
) -> float:
    """Evaluate equation (13): the loss-event rate seen by a source.

    ``rate_profile[i]`` is the source's conditional time-average send rate
    ``x_i`` in congestion state ``i``.
    """
    rates = np.asarray(rate_profile, dtype=float)
    if rates.shape != model.loss_event_rates.shape:
        raise ValueError("rate_profile must have one entry per congestion state")
    # lint: allow[hygiene-float-eq] exact all-zero profile rejection
    if np.any(rates < 0.0) or np.all(rates == 0.0):
        raise ValueError("rate_profile must be non-negative and not all zero")
    weights = rates * model.stationary_probabilities
    return float(np.dot(weights, model.loss_event_rates) / weights.sum())


def poisson_source_rate_profile(model: CongestionModel, rate: float = 1.0) -> np.ndarray:
    """Rate profile of a non-adaptive (Poisson / CBR) source: constant."""
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    return np.full(model.num_states, rate)


def responsive_source_rate_profile(
    model: CongestionModel, formula: LossThroughputFormula
) -> np.ndarray:
    """Rate profile of a fully responsive source (TCP-like).

    The source tracks the congestion process perfectly: in state ``i`` its
    time-average rate is ``f(p_i)``.
    """
    return np.asarray(formula.rate(model.loss_event_rates), dtype=float)


def equation_based_rate_profile(
    model: CongestionModel,
    formula: LossThroughputFormula,
    history_length: int,
    reference_history: float = 1.0,
) -> np.ndarray:
    """Rate profile of an equation-based source with averaging window ``L``.

    The moving-average estimator filters the per-state loss-event rate: the
    effective loss-event rate the source acts on in state ``i`` is a convex
    combination of the state's own rate and the long-run average, with a
    smoothing weight that grows with ``L`` (an ``L``-interval moving average
    retains roughly ``reference_history / (reference_history + L)`` of the
    instantaneous state signal when the congestion process changes state on
    the timescale of ``reference_history`` loss events).  ``L = 0`` recovers
    the fully responsive profile, ``L -> infinity`` the non-adaptive one,
    matching the responsiveness ordering of Claim 3.
    """
    if history_length < 0:
        raise ValueError("history_length must be non-negative")
    if reference_history <= 0.0:
        raise ValueError("reference_history must be positive")
    time_average = model.time_average_loss_rate()
    tracking_weight = reference_history / (reference_history + float(history_length))
    effective_rates = (
        tracking_weight * model.loss_event_rates + (1.0 - tracking_weight) * time_average
    )
    return np.asarray(formula.rate(effective_rates), dtype=float)


@dataclass(frozen=True)
class Claim3Result:
    """The three loss-event rates of Claim 3 for one congestion model."""

    tcp_loss_rate: float
    equation_based_loss_rate: float
    poisson_loss_rate: float

    @property
    def ordering_holds(self) -> bool:
        """Whether ``p' <= p <= p''`` (up to numerical slack)."""
        slack = 1e-12
        return (
            self.tcp_loss_rate <= self.equation_based_loss_rate + slack
            and self.equation_based_loss_rate <= self.poisson_loss_rate + slack
        )


def claim3_loss_event_rates(
    model: CongestionModel,
    formula: LossThroughputFormula,
    history_length: int = 8,
) -> Claim3Result:
    """Compute ``p'`` (TCP), ``p`` (equation-based) and ``p''`` (Poisson)."""
    tcp_rate = sampled_loss_event_rate(
        model, responsive_source_rate_profile(model, formula)
    )
    ebrc_rate = sampled_loss_event_rate(
        model, equation_based_rate_profile(model, formula, history_length)
    )
    poisson_rate = sampled_loss_event_rate(model, poisson_source_rate_profile(model))
    return Claim3Result(
        tcp_loss_rate=tcp_rate,
        equation_based_loss_rate=ebrc_rate,
        poisson_loss_rate=poisson_rate,
    )


def simulate_congestion_sampling(
    model: CongestionModel,
    rate_profile: Sequence[float],
    mean_state_duration: float = 50.0,
    num_transitions: int = 20_000,
    seed: Optional[int] = None,
) -> float:
    """Validate equation (13) by simulating the sampling directly.

    The congestion process visits states i.i.d. according to the stationary
    distribution, holding each for an exponential time with the given mean
    (in units of loss-event intervals of a unit-rate source).  The source
    sends at ``rate_profile[i]`` in state ``i``; losses hit its packets at
    rate ``p_i * rate_profile[i]`` per unit time.  The empirical loss-event
    rate is losses over packets -- which converges to equation (13) when
    the state durations are long (separation of timescales).
    """
    rates = np.asarray(rate_profile, dtype=float)
    if rates.shape != model.loss_event_rates.shape:
        raise ValueError("rate_profile must have one entry per congestion state")
    if mean_state_duration <= 0.0:
        raise ValueError("mean_state_duration must be positive")
    if num_transitions < 1:
        raise ValueError("num_transitions must be positive")
    rng = np.random.default_rng(seed)
    states = rng.choice(
        model.num_states, size=num_transitions, p=model.stationary_probabilities
    )
    durations = rng.exponential(mean_state_duration, size=num_transitions)
    packets = rates[states] * durations
    losses = packets * model.loss_event_rates[states]
    return float(losses.sum() / packets.sum())
