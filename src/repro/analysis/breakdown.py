"""Empirical TCP-friendliness breakdown of simulated scenarios.

Figures 12-15 (Internet paths) and 18-19 (lab configurations) plot, per
experiment, the four sub-condition ratios against the loss-event rate of
the TFRC flow: ``x_bar / f(p, r)``, ``p' / p``, ``r' / r`` and
``x_bar' / f(p', r')``; Figures 11 and 16 plot the direct throughput
ratio ``x_bar / x_bar'``.  This module computes those quantities from a
:class:`~repro.simulator.scenarios.DumbbellResult`, pairing each TFRC flow
with a TCP flow (by index, as the paper pairs its probe connections).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.formulas import LossThroughputFormula, PftkStandardFormula
from ..core.friendliness import FlowObservation, FriendlinessBreakdown, breakdown
from ..measurement.collectors import flow_observation
from ..simulator.scenarios import DumbbellResult

__all__ = [
    "PairBreakdown",
    "pair_breakdowns",
    "aggregate_breakdown",
    "loss_rate_ratio",
    "throughput_ratio",
]


@dataclass(frozen=True)
class PairBreakdown:
    """Breakdown of one TFRC/TCP flow pair, with the observations kept."""

    tfrc: FlowObservation
    tcp: FlowObservation
    breakdown: FriendlinessBreakdown


def _formula_for(result: DumbbellResult,
                 formula: Optional[LossThroughputFormula]) -> LossThroughputFormula:
    if formula is not None:
        return formula
    configured = result.config.formula
    if configured is not None:
        return configured
    return PftkStandardFormula(rtt=result.config.rtt_seconds)


def pair_breakdowns(
    result: DumbbellResult,
    formula: Optional[LossThroughputFormula] = None,
) -> List[PairBreakdown]:
    """Per-pair breakdowns: the i-th TFRC flow against the i-th TCP flow."""
    chosen_formula = _formula_for(result, formula)
    fallback_rtt = result.config.rtt_seconds
    pairs: List[PairBreakdown] = []
    for tfrc_flow, tcp_flow in zip(result.tfrc_flows, result.tcp_flows):
        tfrc_obs = flow_observation(
            tfrc_flow, result.measured_duration, fallback_rtt, label="tfrc"
        )
        tcp_obs = flow_observation(
            tcp_flow, result.measured_duration, fallback_rtt, label="tcp"
        )
        if tfrc_obs.throughput <= 0.0 or tcp_obs.throughput <= 0.0:
            continue
        pairs.append(
            PairBreakdown(
                tfrc=tfrc_obs,
                tcp=tcp_obs,
                breakdown=breakdown(tfrc_obs, tcp_obs, chosen_formula),
            )
        )
    return pairs


def aggregate_breakdown(
    result: DumbbellResult,
    formula: Optional[LossThroughputFormula] = None,
) -> FriendlinessBreakdown:
    """Breakdown computed from the *mean* TFRC and TCP observations.

    This is the scenario-level summary used when the per-pair variability
    is not of interest (e.g. the aggregate points of Figures 8 and 17).
    """
    chosen_formula = _formula_for(result, formula)
    fallback_rtt = result.config.rtt_seconds
    duration = result.measured_duration

    def mean_observation(flows, label: str) -> FlowObservation:
        observations = [
            flow_observation(flow, duration, fallback_rtt, label=label)
            for flow in flows
        ]
        if not observations:
            raise ValueError(f"no {label} flows in the scenario")
        return FlowObservation(
            throughput=float(np.mean([obs.throughput for obs in observations])),
            loss_event_rate=float(
                np.mean([obs.loss_event_rate for obs in observations])
            ),
            mean_rtt=float(np.mean([obs.mean_rtt for obs in observations])),
            label=label,
        )

    tfrc_obs = mean_observation(result.tfrc_flows, "tfrc")
    tcp_obs = mean_observation(result.tcp_flows, "tcp")
    return breakdown(tfrc_obs, tcp_obs, chosen_formula)


def loss_rate_ratio(result: DumbbellResult) -> float:
    """``p'(TCP) / p(TFRC)`` from the scenario's mean loss-event rates.

    This is the quantity plotted in Figure 17 (versus buffer size) and the
    second panel of the breakdown figures.
    """
    tfrc_rate = result.mean_loss_event_rate(result.tfrc_flows)
    tcp_rate = result.mean_loss_event_rate(result.tcp_flows)
    if tfrc_rate <= 0.0:
        raise ValueError("TFRC flows observed no loss events")
    return tcp_rate / tfrc_rate


def throughput_ratio(result: DumbbellResult) -> float:
    """``x_bar(TFRC) / x_bar'(TCP)`` from the scenario means (Figures 8, 11, 16)."""
    tfrc_throughput = result.mean_throughput(result.tfrc_flows)
    tcp_throughput = result.mean_throughput(result.tcp_flows)
    if tcp_throughput <= 0.0:
        raise ValueError("TCP flows carried no traffic")
    return tfrc_throughput / tcp_throughput
